package bounds

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cfg"
	"databreak/internal/ir"
	"databreak/internal/minic"
	"databreak/internal/sparc"
)

func analyze(t *testing.T, csrc, fn string) (*ir.Info, *cfg.Func, []*LoopInfo) {
	t.Helper()
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		t.Fatal(err)
	}
	var syms []asm.Sym
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec {
			syms = append(syms, it.Sym)
		}
	}
	for _, f := range fns {
		if f.Name != fn {
			continue
		}
		info := ir.Build(f, syms)
		var lis []*LoopInfo
		for _, l := range f.Loops {
			lis = append(lis, AnalyzeLoop(info, l))
		}
		return info, f, lis
	}
	t.Fatalf("function %q not found", fn)
	return nil, nil, nil
}

// storeBounds returns the bounds of every unconverted store address in the
// loop.
func storeBounds(in *ir.Info, f *cfg.Func, li *LoopInfo) []Bounds {
	var out []Bounds
	for b := range li.Loop.Blocks {
		blk := f.Blocks[b]
		for p := blk.Start; p < blk.End; p++ {
			if !f.Instruction(p).Op.IsStore() {
				continue
			}
			if _, conv := in.StoreSlot[p]; conv {
				continue
			}
			out = append(out, li.BoundsOf(in.AddrOf[p], b))
		}
	}
	return out
}

func TestMonotonicDetection(t *testing.T) {
	_, _, lis := analyze(t, `
int a[100];
int main() {
	int i;
	for (i = 0; i < 100; i = i + 1) a[i] = i;
	return 0;
}`, "main")
	if len(lis) != 1 {
		t.Fatalf("loops = %d", len(lis))
	}
	li := lis[0]
	if len(li.Mono) != 1 {
		t.Fatalf("monotonic vars = %d, want 1 (%+v)", len(li.Mono), li.Mono)
	}
	for _, m := range li.Mono {
		if m.Step != 1 {
			t.Fatalf("step = %d, want 1", m.Step)
		}
		if li.In.Val(m.Init).Kind != ir.ValConst || li.In.Val(m.Init).Const != 0 {
			t.Fatalf("init = %+v, want const 0", li.In.Val(m.Init))
		}
	}
	if len(li.Asserts) == 0 {
		t.Fatal("loop condition must produce asserts")
	}
}

func TestDecreasingMonotonic(t *testing.T) {
	_, _, lis := analyze(t, `
int a[100];
int main() {
	int i;
	for (i = 99; i >= 0; i = i - 3) a[i] = i;
	return 0;
}`, "main")
	li := lis[0]
	if len(li.Mono) != 1 {
		t.Fatalf("monotonic vars = %d, want 1", len(li.Mono))
	}
	for _, m := range li.Mono {
		if m.Step != -3 {
			t.Fatalf("step = %d, want -3", m.Step)
		}
	}
}

func TestMonotonicArrayStoreIsFullyBounded(t *testing.T) {
	in, f, lis := analyze(t, `
int a[100];
int main() {
	int i;
	for (i = 0; i < 100; i = i + 1) a[i] = i;
	return 0;
}`, "main")
	bs := storeBounds(in, f, lis[0])
	if len(bs) != 1 {
		t.Fatalf("unconverted in-loop stores = %d, want 1", len(bs))
	}
	b := bs[0]
	if b.L.Kind == Bot || b.U.Kind == Bot {
		t.Fatalf("array store must be bounded on both sides: %+v", b)
	}
	// The lower bound comes from the monotonic init (L_M at best), the
	// upper from the assert (L_A).
	if b.L.Kind > KLI || b.U.Kind != KA {
		t.Fatalf("kinds = L:%v U:%v, want L<=L_LI and U=L_A", b.L.Kind, b.U.Kind)
	}
}

func TestInvariantAddressStore(t *testing.T) {
	in, f, lis := analyze(t, `
int a[100];
int g;
int main() {
	int i;
	int *p;
	p = &a[7];
	for (i = 0; i < 50; i = i + 1) {
		*p = i;
	}
	return 0;
}`, "main")
	bs := storeBounds(in, f, lis[0])
	var liCount int
	for _, b := range bs {
		if b.L.Kind >= KLI && b.U.Kind >= KLI {
			liCount++
		}
	}
	if liCount != 1 {
		t.Fatalf("loop-invariant-address stores = %d, want 1 (bounds: %+v)", liCount, bs)
	}
}

func TestVariableLimitFromSlot(t *testing.T) {
	// Loop limit held in a local: the assert limit must be materializable
	// by reloading the slot.
	in, f, lis := analyze(t, `
int a[100];
int fill(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) a[i] = i;
	return 0;
}
int main() { return fill(60); }`, "fill")
	bs := storeBounds(in, f, lis[0])
	if len(bs) != 1 {
		t.Fatalf("stores = %d", len(bs))
	}
	if bs[0].U.Kind != KA {
		t.Fatalf("upper bound = %+v, want assert-derived", bs[0].U)
	}
	// The upper expr must involve a slot reload or constant chain.
	found := false
	var walk func(e *Expr)
	walk = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == ESlot && e.Slot.Sym.Name == "n" {
			found = true
		}
		for _, a := range e.Args {
			walk(a)
		}
	}
	walk(bs[0].U.Expr)
	_ = in
	_ = f
	if !found {
		t.Fatal("assert limit must reload slot n in the pre-header")
	}
}

func TestPointerWalkNotBounded(t *testing.T) {
	// A pointer loaded from memory each iteration has no bounds.
	in, f, lis := analyze(t, `
struct Node { int v; struct Node *next; };
int main() {
	struct Node *n;
	n = alloc(sizeof(struct Node));
	n->next = 0;
	while (n != 0) {
		n->v = 1;
		n = n->next;
	}
	return 0;
}`, "main")
	for _, li := range lis {
		for _, b := range storeBounds(in, f, li) {
			if b.L.Kind != Bot && b.U.Kind != Bot {
				t.Fatalf("pointer-chasing store must be unbounded, got %+v", b)
			}
		}
	}
}

func TestInvariantMemo(t *testing.T) {
	_, _, lis := analyze(t, `
int a[10];
int main() {
	int i;
	int base;
	base = 3;
	for (i = 0; i < 5; i = i + 1) a[base + i] = 0;
	return 0;
}`, "main")
	li := lis[0]
	// The monotonic phi is not invariant; its init is.
	for id, m := range li.Mono {
		if li.Invariant(id) {
			t.Fatal("monotonic phi must not be invariant")
		}
		if !li.Invariant(m.Init) {
			t.Fatal("monotonic init must be invariant")
		}
	}
}

func TestNestedLoopInnerBounds(t *testing.T) {
	in, f, lis := analyze(t, `
int m[400];
int main() {
	int i;
	int j;
	for (i = 0; i < 20; i = i + 1) {
		for (j = 0; j < 20; j = j + 1) {
			m[i * 20 + j] = i + j;
		}
	}
	return 0;
}`, "main")
	// Innermost loop first.
	inner := lis[0]
	if inner.Loop.Depth != 2 {
		t.Fatalf("first loop depth = %d, want 2 (inner)", inner.Loop.Depth)
	}
	bs := storeBounds(in, f, inner)
	if len(bs) != 1 {
		t.Fatalf("inner stores = %d", len(bs))
	}
	// In the inner loop, i is invariant (i's phi belongs to the outer
	// header) and j is monotonic: the store must be fully bounded.
	if bs[0].L.Kind == Bot || bs[0].U.Kind == Bot {
		t.Fatalf("inner store must be bounded: %+v", bs[0])
	}
}

func TestExprDepthAndOps(t *testing.T) {
	e := &Expr{Kind: EOp, Op: sparc.Add, Args: []*Expr{
		{Kind: ESym, Sym: "a"},
		{Kind: EOp, Op: sparc.Sll, Args: []*Expr{
			{Kind: EConst, Const: 5}, {Kind: EConst, Const: 2},
		}},
	}}
	if e.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", e.Depth())
	}
}
