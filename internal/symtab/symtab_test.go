package symtab

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cfg"
	"databreak/internal/ir"
	"databreak/internal/minic"
)

func matchesFor(t *testing.T, csrc, fn string) (map[int]Match, *cfg.Func) {
	t.Helper()
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatal(err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		t.Fatal(err)
	}
	var syms []asm.Sym
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec {
			syms = append(syms, it.Sym)
		}
	}
	for _, f := range fns {
		if f.Name == fn {
			return MatchStores(ir.Build(f, syms), syms), f
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

func countByName(ms map[int]Match) map[string]int {
	out := make(map[string]int)
	for _, m := range ms {
		out[m.Sym.Name]++
	}
	return out
}

func TestLocalAndGlobalScalarsMatch(t *testing.T) {
	ms, _ := matchesFor(t, `
int g;
int main() {
	int x;
	x = 1;
	x = x + 2;
	g = x;
	return g;
}`, "main")
	names := countByName(ms)
	if names["x"] != 2 {
		t.Errorf("x matched %d stores, want 2 (%v)", names["x"], names)
	}
	if names["g"] != 1 {
		t.Errorf("g matched %d stores, want 1", names["g"])
	}
}

func TestConstantIndexedArrayElementMatches(t *testing.T) {
	// a[3] = 1 has a statically known address inside a's extent.
	ms, _ := matchesFor(t, `
int a[10];
int main() {
	a[3] = 1;
	return a[3];
}`, "main")
	names := countByName(ms)
	if names["a"] != 1 {
		t.Errorf("a matched %d stores, want 1 (%v)", names["a"], names)
	}
	for _, m := range ms {
		if m.Sym.Name == "a" && m.Off != 12 {
			t.Errorf("offset = %d, want 12", m.Off)
		}
	}
}

func TestComputedIndexDoesNotMatch(t *testing.T) {
	ms, f := matchesFor(t, `
int a[10];
int fill(int i) {
	a[i] = 1;
	return 0;
}
int main() { return fill(2); }`, "fill")
	for pos, m := range ms {
		if m.Sym.Name == "a" {
			t.Errorf("computed store at %d matched symbol a", pos)
		}
	}
	_ = f
}

func TestParamSpillMatchesParamSymbol(t *testing.T) {
	ms, _ := matchesFor(t, `
int f(int a, int b) { return a + b; }
int main() { return f(1, 2); }`, "f")
	names := countByName(ms)
	if names["a"] != 1 || names["b"] != 1 {
		t.Errorf("param spills matched %v, want a:1 b:1", names)
	}
}

func TestOutOfExtentWriteDoesNotMatch(t *testing.T) {
	// Store past the end of the symbol (pointer arithmetic beyond a scalar)
	// must not match it.
	src := `
main:
	save %sp, -96, %sp
	set g, %o0
	st %g0, [%o0+4]
	mov 0, %i0
	restore
	retl
	.stabs "main", func, main, 0
	.stabs "g", global, g, 4
	.data
g:	.word 0
pad: .word 0
`
	u := asm.MustParse("p.s", src)
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		t.Fatal(err)
	}
	var syms []asm.Sym
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec {
			syms = append(syms, it.Sym)
		}
	}
	ms := MatchStores(ir.Build(fns[0], syms), syms)
	if len(ms) != 0 {
		t.Fatalf("out-of-extent store matched: %v", ms)
	}
}
