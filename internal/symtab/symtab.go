// Package symtab implements the symbol table pattern matching of §4.2: it
// matches the target-address expression DAG of each write instruction
// against the compiler's debugging symbol records. A write whose target is
// provably inside a named variable's extent is a "known" write: its runtime
// check can be eliminated and re-inserted dynamically only while that
// variable is monitored (PreMonitor/PostMonitor).
package symtab

import (
	"databreak/internal/asm"
	"databreak/internal/ir"
	"databreak/internal/sparc"
)

// Match records that a store writes within symbol Sym, Off bytes in.
type Match struct {
	Sym asm.Sym
	Off int32
}

// MatchStores matches every store in the function against the symbol
// records, returning store position -> match. Stores with computed
// (unknown-offset) targets never match; they remain checked, which is what
// keeps monitor-hit detection sound regardless of aliasing.
func MatchStores(in *ir.Info, syms []asm.Sym) map[int]Match {
	out := make(map[int]Match)
	f := in.F
	for pos, addrVal := range in.AddrOf {
		insn := f.Instruction(pos)
		if !insn.Op.IsStore() {
			continue
		}
		size := int32(4)
		if insn.Op == sparc.Std {
			size = 8
		}
		sh := in.ShapeOf(addrVal)
		if !sh.IsAddr || !sh.Known {
			continue
		}
		for _, s := range syms {
			switch {
			case sh.FPRel && (s.Kind == asm.SymLocal || s.Kind == asm.SymParam):
				if s.Func != f.Name {
					continue
				}
				if s.FpOff <= sh.Off && sh.Off+size <= s.FpOff+s.Size {
					out[pos] = Match{Sym: s, Off: sh.Off - s.FpOff}
				}
			case !sh.FPRel && sh.Sym != "" && s.Kind == asm.SymGlobal:
				if s.Label != sh.Sym {
					continue
				}
				if 0 <= sh.Off && sh.Off+size <= s.Size {
					out[pos] = Match{Sym: s, Off: sh.Off}
				}
			}
			if _, done := out[pos]; done {
				break
			}
		}
	}
	return out
}
