// Package baseline models the data-breakpoint implementation strategies the
// paper compares against in §1:
//
//   - dbx/gdb-style trap checking: every instruction's possible side effects
//     are checked through dynamically inserted trap instructions, costing two
//     context switches plus debugger work per instruction — the measured
//     overhead was a factor of 85,000, independent of the program.
//   - VAX DEBUG-style virtual-memory page protection: pages containing
//     monitored data are write-protected; every store to such a page faults
//     into the OS and the debugger, even when it does not touch the watched
//     words.
//   - Hardware watchpoint registers (Intel i386: 4 words; MIPS R4000 and
//     SPARC: 1 word): zero overhead, but a hard cap on how many words can be
//     watched at once.
package baseline

import (
	"fmt"

	"databreak/internal/machine"
)

// Trap cost model (cycles), calibrated so that on typical code (~2 cycles
// per instruction) the slowdown lands at the paper's measured factor of
// 85,000: two context switches plus debugger-side decoding per instruction.
const (
	CtxSwitchCycles    = 80_000
	DebuggerWorkCycles = 10_000
	TrapPerInstr       = 2*CtxSwitchCycles + DebuggerWorkCycles
)

// ApplyTrapStrategy configures m to charge the dbx-style per-instruction
// trap cost. Detection is exact (the debugger inspects every instruction),
// so no further machinery is needed for the overhead measurement.
func ApplyTrapStrategy(m *machine.Machine) {
	m.PerInstrPenalty = TrapPerInstr
}

// PageProtect implements the VAX DEBUG strategy: write-protect every page
// overlapping a monitored region; each store to a protected page costs a
// fault (context switch in), an emulated single step, and re-protection.
type PageProtect struct {
	m     *machine.Machine
	pages map[uint32]bool
	// FaultCycles is charged per store into a protected page.
	FaultCycles int64
	// Faults counts protection faults taken.
	Faults uint64
	// Hits records true monitor hits (store overlapped a watched word).
	Hits []uint32

	regions [][2]uint32
}

// NewPageProtect attaches the strategy to m.
func NewPageProtect(m *machine.Machine) *PageProtect {
	p := &PageProtect{
		m:           m,
		pages:       make(map[uint32]bool),
		FaultCycles: 2*CtxSwitchCycles/10 + 4_000, // fault + unprotect + step + reprotect
	}
	m.StoreHook = p.storeHook
	return p
}

// Watch protects the pages covering [addr, addr+size).
func (p *PageProtect) Watch(addr, size uint32) {
	for pg := addr &^ (machine.PageBytes - 1); pg <= (addr+size-1)&^(machine.PageBytes-1); pg += machine.PageBytes {
		p.pages[pg] = true
	}
	p.regions = append(p.regions, [2]uint32{addr, size})
}

func (p *PageProtect) storeHook(addr uint32, size int32) int64 {
	if !p.pages[addr&^(machine.PageBytes-1)] {
		return 0
	}
	p.Faults++
	for _, r := range p.regions {
		if addr < r[0]+r[1] && r[0] < addr+uint32(size) {
			p.Hits = append(p.Hits, addr)
			break
		}
	}
	return p.FaultCycles
}

// Hardware implements watchpoint registers: at most Words words watched,
// zero runtime overhead, exact detection.
type Hardware struct {
	m     *machine.Machine
	Words int // capacity (i386: 4; MIPS R4000 and SPARC: 1)
	// Hits records monitor hits.
	Hits []uint32

	watched []uint32
}

// NewHardware attaches an n-word watchpoint unit to m.
func NewHardware(m *machine.Machine, n int) *Hardware {
	h := &Hardware{m: m, Words: n}
	m.StoreHook = h.storeHook
	return h
}

// Watch adds the words of [addr, addr+size); it fails when the region would
// exceed the register file — the fundamental limitation the paper cites.
func (h *Hardware) Watch(addr, size uint32) error {
	words := int(size+3) / 4
	if len(h.watched)+words > h.Words {
		return fmt.Errorf("baseline: hardware supports %d watched words; %d requested",
			h.Words, len(h.watched)+words)
	}
	for o := uint32(0); o < size; o += 4 {
		h.watched = append(h.watched, (addr+o)&^3)
	}
	return nil
}

func (h *Hardware) storeHook(addr uint32, size int32) int64 {
	for _, w := range h.watched {
		if w >= addr&^3 && w <= (addr+uint32(size)-1)&^3 {
			h.Hits = append(h.Hits, addr)
		}
	}
	return 0 // comparators run in parallel with the store
}
