package baseline

import (
	"testing"

	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/sparc"
)

func storeLoop(n int) []sparc.Instr {
	var p []sparc.Instr
	p = append(p, sparc.RI(sparc.Or, sparc.G0, 0, sparc.O1))
	// loop: st; add; cmp; bl loop
	p = append(p,
		sparc.Instr{Op: sparc.St, Rd: sparc.G0, Rs1: sparc.O1, Imm: 0x1000, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 4, sparc.O1),
		sparc.Instr{Op: sparc.Subcc, Rs1: sparc.O1, Imm: int32(n * 4), UseImm: true, Rd: sparc.G0},
	)
	p = append(p, sparc.Branch(sparc.BL, 1))
	p = append(p, sparc.Instr{Op: sparc.Ta, Imm: machine.TrapExit, UseImm: true})
	return p
}

func newM() *machine.Machine {
	return machine.New(cache.DefaultConfig, machine.DefaultCosts)
}

func TestTrapStrategyFactor(t *testing.T) {
	prog := storeLoop(100)
	m := newM()
	m.LoadText(prog, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	base := m.Cycles()

	m2 := newM()
	m2.LoadText(prog, 0)
	ApplyTrapStrategy(m2)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	factor := float64(m2.Cycles()) / float64(base)
	if factor < 10_000 {
		t.Fatalf("trap factor = %.0f, want the catastrophic slowdown the paper measured", factor)
	}
}

func TestPageProtectFaultsOnlyOnProtectedPages(t *testing.T) {
	prog := storeLoop(64) // stores at 0x1000..0x10fc, one page
	m := newM()
	m.LoadText(prog, 0)
	pp := NewPageProtect(m)
	pp.Watch(0x1040, 4) // protects the page containing all stores
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if pp.Faults != 64 {
		t.Fatalf("faults = %d, want 64 (every store on the page)", pp.Faults)
	}
	if len(pp.Hits) != 1 {
		t.Fatalf("true hits = %d, want 1", len(pp.Hits))
	}

	// Watching a different page: zero faults.
	m2 := newM()
	m2.LoadText(prog, 0)
	pp2 := NewPageProtect(m2)
	pp2.Watch(0x9000, 4)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if pp2.Faults != 0 {
		t.Fatalf("cold-page faults = %d, want 0", pp2.Faults)
	}
}

func TestPageProtectChargesCycles(t *testing.T) {
	prog := storeLoop(64)
	m := newM()
	m.LoadText(prog, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	base := m.Cycles()

	m2 := newM()
	m2.LoadText(prog, 0)
	pp := NewPageProtect(m2)
	pp.Watch(0x1000, 4)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.Cycles() <= base+63*pp.FaultCycles {
		t.Fatalf("page faults undercharged: %d vs base %d", m2.Cycles(), base)
	}
}

func TestHardwareCapacityAndDetection(t *testing.T) {
	prog := storeLoop(16)
	m := newM()
	m.LoadText(prog, 0)
	hw := NewHardware(m, 4)
	if err := hw.Watch(0x1008, 8); err != nil {
		t.Fatal(err)
	}
	if err := hw.Watch(0x1020, 8); err != nil {
		t.Fatal(err)
	}
	// Register file is now full.
	if err := hw.Watch(0x2000, 4); err == nil {
		t.Fatal("fifth watched word must be rejected")
	}
	base := func() int64 {
		mm := newM()
		mm.LoadText(prog, 0)
		mm.Run()
		return mm.Cycles()
	}()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hw.Hits) != 4 {
		t.Fatalf("hits = %d, want 4 (two 2-word regions)", len(hw.Hits))
	}
	if m.Cycles() != base {
		t.Fatalf("hardware watchpoints must cost zero cycles: %d vs %d", m.Cycles(), base)
	}
}
