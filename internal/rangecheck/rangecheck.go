// Package rangecheck implements the range-check data structure of §4.3: a
// conservative intersection test between an address interval and the set of
// monitored words, answerable in at most three memory accesses for ranges of
// 2^25 bytes or less.
//
// The structure is a stack of summary bitmaps over the monitored-word set.
// Level k has one bit per 2^shift[k] bytes; a bit is set iff at least one
// monitored word lies inside its granule. A range query picks the finest
// level at which the interval spans at most three summary words and tests
// those words. Coarse granules make the test conservative: it may report an
// intersection where none exists (costing only a redundant re-inserted write
// check, never a missed monitor hit).
package rangecheck

import "fmt"

// MaxRangeBytes is the span for which the paper promises at most three
// memory accesses.
const MaxRangeBytes = 1 << 25

// levelShifts are the summary granule sizes (log2 bytes per bit). With
// 64-bit summary words, three words at shift s cover 3*64*2^s bytes, so
// shift 19 already covers > 2^25; the coarser level handles anything larger.
var levelShifts = []uint{9, 14, 19, 24}

type level struct {
	shift  uint
	words  []uint64
	counts map[uint32]uint32 // bit index -> monitored words beneath it
}

// Index is the summary structure. Create with New.
type Index struct {
	levels []level
}

// New builds an empty index covering the full 32-bit address space.
func New() *Index {
	x := &Index{}
	for _, s := range levelShifts {
		bitsN := uint64(1) << (32 - s)
		x.levels = append(x.levels, level{
			shift:  s,
			words:  make([]uint64, bitsN/64),
			counts: make(map[uint32]uint32),
		})
	}
	return x
}

func checkRegion(addr, size uint32) error {
	if addr&3 != 0 || size == 0 || size&3 != 0 {
		return fmt.Errorf("rangecheck: region [%#x,+%d) is not word aligned", addr, size)
	}
	return nil
}

// Add records the monitored region [addr, addr+size).
func (x *Index) Add(addr, size uint32) error {
	if err := checkRegion(addr, size); err != nil {
		return err
	}
	for li := range x.levels {
		l := &x.levels[li]
		lo := addr >> l.shift
		hi := (addr + size - 1) >> l.shift
		for b := lo; ; b++ {
			// Count the monitored words this region contributes under bit b.
			gLo := b << l.shift
			gHi := gLo + (1 << l.shift) - 1
			from := max32(addr, gLo)
			to := min32(addr+size-1, gHi)
			words := (to-from)/4 + 1
			l.counts[b] += words
			l.words[b>>6] |= 1 << (b & 63)
			if b == hi {
				break
			}
		}
	}
	return nil
}

// Remove erases the monitored region [addr, addr+size), which must have
// been added with exactly these bounds (regions are non-overlapping).
func (x *Index) Remove(addr, size uint32) error {
	if err := checkRegion(addr, size); err != nil {
		return err
	}
	for li := range x.levels {
		l := &x.levels[li]
		lo := addr >> l.shift
		hi := (addr + size - 1) >> l.shift
		for b := lo; ; b++ {
			gLo := b << l.shift
			gHi := gLo + (1 << l.shift) - 1
			from := max32(addr, gLo)
			to := min32(addr+size-1, gHi)
			words := (to-from)/4 + 1
			c, ok := l.counts[b]
			if !ok || c < words {
				return fmt.Errorf("rangecheck: removing region [%#x,+%d) that was not added", addr, size)
			}
			if c == words {
				delete(l.counts, b)
				l.words[b>>6] &^= 1 << (b & 63)
			} else {
				l.counts[b] = c - words
			}
			if b == hi {
				break
			}
		}
	}
	return nil
}

// pickLevel returns the finest level at which [lo,hi] spans at most three
// summary words.
func (x *Index) pickLevel(lo, hi uint32) *level {
	for li := range x.levels {
		l := &x.levels[li]
		span := (hi >> (l.shift + 6)) - (lo >> (l.shift + 6)) + 1
		if span <= 3 {
			return l
		}
	}
	return &x.levels[len(x.levels)-1]
}

// Intersects conservatively reports whether the inclusive byte interval
// [lo, hi] may contain a monitored word. False negatives never occur.
func (x *Index) Intersects(lo, hi uint32) bool {
	if hi < lo {
		lo, hi = hi, lo
	}
	l := x.pickLevel(lo, hi)
	bLo := lo >> l.shift
	bHi := hi >> l.shift
	wLo := bLo >> 6
	wHi := bHi >> 6
	for w := wLo; ; w++ {
		word := l.words[w]
		if word != 0 {
			// Mask to the queried bit range within this word.
			var mask uint64 = ^uint64(0)
			if w == wLo {
				mask &= ^uint64(0) << (bLo & 63)
			}
			if w == wHi {
				rem := bHi & 63
				mask &= ^uint64(0) >> (63 - rem)
			}
			if word&mask != 0 {
				return true
			}
		}
		if w == wHi {
			break
		}
	}
	return false
}

// AccessesFor returns how many summary words Intersects examines for the
// interval; the paper's bound is 3 for spans of MaxRangeBytes or less.
func (x *Index) AccessesFor(lo, hi uint32) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	l := x.pickLevel(lo, hi)
	return int((hi>>(l.shift+6))-(lo>>(l.shift+6))) + 1
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
