package rangecheck

import (
	"math/rand"
	"testing"
)

func TestEmptyIndexNeverIntersects(t *testing.T) {
	x := New()
	if x.Intersects(0, 0xFFFF_FFFF) {
		t.Fatal("empty index must not intersect anything")
	}
}

func TestExactIntersection(t *testing.T) {
	x := New()
	if err := x.Add(0x10000, 64); err != nil {
		t.Fatal(err)
	}
	if !x.Intersects(0x10000, 0x1003F) {
		t.Fatal("range equal to region must intersect")
	}
	if !x.Intersects(0, 0xFFFF_FFFF) {
		t.Fatal("whole-space range must intersect")
	}
	if !x.Intersects(0x1003C, 0x20000) {
		t.Fatal("range touching region tail must intersect")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	x := New()
	rng := rand.New(rand.NewSource(7))
	type region struct{ addr, size uint32 }
	var regions []region
	for i := 0; i < 50; i++ {
		r := region{uint32(rng.Intn(1<<26)) &^ 3, (uint32(rng.Intn(64)) + 1) * 4}
		if err := x.Add(r.addr, r.size); err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for trial := 0; trial < 2000; trial++ {
		lo := uint32(rng.Intn(1 << 26))
		hi := lo + uint32(rng.Intn(1<<20))
		truth := false
		for _, r := range regions {
			if r.addr <= hi && lo < r.addr+r.size {
				truth = true
				break
			}
		}
		got := x.Intersects(lo, hi)
		if truth && !got {
			t.Fatalf("false negative: [%#x,%#x] intersects %+v regions", lo, hi, regions)
		}
	}
}

func TestRemoveRestoresEmpty(t *testing.T) {
	x := New()
	x.Add(0x5000, 32)
	x.Add(0x5100, 32)
	x.Remove(0x5000, 32)
	if !x.Intersects(0x5100, 0x511F) {
		t.Fatal("remaining region must still intersect")
	}
	x.Remove(0x5100, 32)
	if x.Intersects(0, 0xFFFF_FFFF) {
		t.Fatal("after removing all regions nothing must intersect")
	}
}

func TestRemoveUnknownFails(t *testing.T) {
	x := New()
	if err := x.Remove(0x1000, 4); err == nil {
		t.Fatal("removing an absent region must fail")
	}
	x.Add(0x1000, 8)
	if err := x.Remove(0x1000, 16); err == nil {
		t.Fatal("removing with wrong bounds must fail")
	}
}

func TestSharedSummaryBitCounts(t *testing.T) {
	// Two regions under one coarse summary bit: removing one must keep the
	// bit set.
	x := New()
	x.Add(0x100, 4)
	x.Add(0x180, 4) // same 512-byte granule
	x.Remove(0x100, 4)
	if !x.Intersects(0x180, 0x183) {
		t.Fatal("summary bit cleared while a sibling region remains")
	}
	x.Remove(0x180, 4)
	if x.Intersects(0x0, 0x1FF) {
		t.Fatal("summary bit must clear with the last region")
	}
}

func TestAccessBoundForPaperRanges(t *testing.T) {
	x := New()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		lo := uint32(rng.Int63()) & 0xFFFF_FFFF
		span := uint32(rng.Intn(MaxRangeBytes))
		hi := lo + span
		if hi < lo {
			hi = 0xFFFF_FFFF
		}
		if n := x.AccessesFor(lo, hi); n > 3 {
			t.Fatalf("range [%#x,%#x] (span %d) needs %d accesses, paper bound is 3",
				lo, hi, span, n)
		}
	}
}

func TestLargeRangesStillAnswer(t *testing.T) {
	x := New()
	x.Add(0xF000_0000, 4)
	if !x.Intersects(0, 0xFFFF_FFFF) {
		t.Fatal("full-space query must find the region")
	}
	// Whole-space span exceeds the paper bound but must still be bounded by
	// the coarsest level's word count.
	if n := x.AccessesFor(0, 0xFFFF_FFFF); n > 4 {
		t.Fatalf("full-space query needs %d accesses", n)
	}
}

func TestAlignmentValidation(t *testing.T) {
	x := New()
	if err := x.Add(0x1001, 4); err == nil {
		t.Fatal("unaligned add must fail")
	}
	if err := x.Add(0x1000, 5); err == nil {
		t.Fatal("non-word size must fail")
	}
}

func TestReversedBoundsNormalized(t *testing.T) {
	x := New()
	x.Add(0x2000, 4)
	if !x.Intersects(0x3000, 0x1000) {
		t.Fatal("reversed bounds must be normalized")
	}
}

func BenchmarkIntersectsMiss(b *testing.B) {
	x := New()
	x.Add(0x1000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(0x8000_0000, 0x8100_0000)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	x := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Add(0x4000, 256)
		x.Remove(0x4000, 256)
	}
}
