module databreak

go 1.22
