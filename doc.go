// Package databreak reproduces "Practical Data Breakpoints: Design and
// Implementation" (Wahbe, Lucco, Graham; PLDI 1993) as a Go library and
// experiment suite.
//
// The paper's contribution — a monitored region service built on segmented
// bitmap write checks and data-flow write-check elimination — lives in
// internal/core (reusable Go API) and internal/monitor + internal/patch +
// internal/elim (the instruction-level pipeline on the simulated SPARC
// machine). See README.md for the architecture and EXPERIMENTS.md for the
// reproduction of every table and figure.
//
// The benchmarks in bench_test.go regenerate the paper's evaluation:
//
//	go test -bench=Table1 .
//	go test -bench=Table2 .
//	go test -bench=Figure3 .
//	go test -bench=Strategies .
//
// or run the full harness: go run ./cmd/mrsbench -table all
package databreak
