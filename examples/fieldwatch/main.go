// Fieldwatch runs the paper's motivating query end to end:
//
//	"stop when field f of structure s is modified"
//
// A mini-C program with a global struct is compiled, patched with write
// checks, and executed on the simulated machine; the debugger maps the
// field name to a monitored region via the compiler's symbol records and
// reports every hit with the instruction count at which it happened —
// including a write through an alias the programmer would struggle to find
// with control breakpoints.
package main

import (
	"fmt"
	"os"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
)

const program = `
struct Config {
	int mode;
	int limit;
	int count;
};
struct Config cfg;

int directUpdate(int m) {
	cfg.mode = m;
	return 0;
}

int sneakyUpdate(int *p, int v) {
	*p = v;      // alias: the debugger cannot find this by reading the source
	return 0;
}

int touchOthers() {
	cfg.limit = 100;
	cfg.count = cfg.count + 1;
	return 0;
}

int main() {
	directUpdate(1);
	touchOthers();
	sneakyUpdate(&cfg.mode, 2);
	touchOthers();
	directUpdate(3);
	return cfg.mode;
}
`

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fieldwatch: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	asmSrc, err := minic.Compile(program)
	if err != nil {
		fatalf("compile: %v", err)
	}
	u, err := asm.Parse("fieldwatch.c", asmSrc)
	if err != nil {
		fatalf("parse: %v", err)
	}
	res, err := patch.Apply(patch.Options{Strategy: patch.BitmapInlineRegisters}, u)
	if err != nil {
		fatalf("patch: %v", err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		fatalf("assemble: %v", err)
	}

	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		fatalf("monitor service: %v", err)
	}

	// Map "field mode of struct cfg" to a monitored region: the struct's
	// symbol record plus the field offset (mode is the first field).
	sym, ok := prog.LookupSym("cfg", "")
	if !ok {
		fatalf("no symbol cfg in patched program")
	}
	fieldAddr := sym.Addr + 0 // offsetof(Config, mode)
	if err := svc.CreateRegion(fieldAddr, 4); err != nil {
		fatalf("create region: %v", err)
	}
	fmt.Printf("watching cfg.mode at %#x\n", fieldAddr)

	svc.OnHit = func(h monitor.Hit) {
		fmt.Printf("  cfg.mode modified -> %d (instruction %d)\n",
			m.ReadWord(fieldAddr), h.Instrs)
	}
	code, err := m.Run()
	if err != nil {
		fatalf("run: %v", err)
	}
	fmt.Printf("program exited %d after %d instructions; %d hits "+
		"(including the aliased write), other fields untouched by the watch\n",
		code, m.Instrs(), len(svc.Hits))
}
