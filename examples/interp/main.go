// Interp shows a downstream adoption of the library: a tiny stack-machine
// interpreter written in Go gives its guest programs data breakpoints by
// calling the monitored region service on every store to guest memory —
// no hardware support, no per-breakpoint slowdown, exactly the paper's
// pitch for interpreters and managed runtimes.
package main

import (
	"fmt"
	"os"

	"databreak/internal/core"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "interp: "+format+"\n", args...)
	os.Exit(1)
}

// A minimal byte-code machine: one accumulator, word-addressed memory.
type op struct {
	code byte // 'L' load imm, 'A' add mem, 'S' store mem, 'J' jump-if-neg
	arg  uint32
}

type vm struct {
	mem []int32
	acc int32
	mrs *core.Service
}

func (v *vm) run(prog []op) {
	for pc := 0; pc < len(prog); pc++ {
		in := prog[pc]
		switch in.code {
		case 'L':
			v.acc = int32(in.arg)
		case 'A':
			v.acc += v.mem[in.arg/4]
		case 'S':
			v.mem[in.arg/4] = v.acc
			// The interpreter is the "program being debugged": it reports
			// every guest store to the MRS.
			v.mrs.CheckWrite(in.arg, 4)
		case 'J':
			if v.acc < 0 {
				pc = int(in.arg) - 1
			}
		}
	}
}

func main() {
	hits := 0
	svc := core.New(core.WithCallback(func(addr, size uint32) {
		hits++
		fmt.Printf("guest data breakpoint: write to %#x\n", addr)
	}))

	v := &vm{mem: make([]int32, 64), mrs: svc}

	// Watch guest word 0x40 (mem[16]).
	if err := svc.CreateMonitoredRegion(core.Region{Addr: 0x40, Size: 4}); err != nil {
		fatalf("create region: %v", err)
	}

	// Guest program: writes a few cells; exactly one touches 0x40.
	prog := []op{
		{'L', 7}, {'S', 0x10},
		{'L', 9}, {'A', 0x10}, {'S', 0x20},
		{'L', 21}, {'S', 0x40}, // the watched cell
		{'L', 3}, {'S', 0x44},
	}
	v.run(prog)

	fmt.Printf("guest finished: mem[16]=%d mem[0x40/4]=%d, %d hit(s)\n",
		v.mem[4], v.mem[16], hits)
	if hits != 1 {
		fatalf("expected exactly one hit, got %d", hits)
	}
}
