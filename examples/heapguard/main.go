// Heapguard demonstrates the fault-isolation application from the paper's
// conclusion: "a programmer could detect corruption of library data
// structures such as those used by a memory allocator."
//
// The simulated allocator stores a hidden size header one word before each
// allocation. A buggy program underflows its buffer and smashes that
// header. Control breakpoints cannot find this (the crash appears much
// later, inside free); a data breakpoint on the header catches the guilty
// store the moment it executes.
package main

import (
	"fmt"
	"os"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
)

const program = `
int fill(int *buf, int n, int bug) {
	int i;
	for (i = 0; i < n; i = i + 1) buf[i] = i;
	if (bug) buf[0 - 1] = 777;   // underflow: smashes the allocator header
	return 0;
}

int main() {
	int *a;
	int *b;
	a = alloc(64);
	b = alloc(64);
	fill(a, 16, 0);
	fill(b, 16, 1);
	free(a);
	free(b);
	return a[3] + b[5];
}
`

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heapguard: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	asmSrc, err := minic.Compile(program)
	if err != nil {
		fatalf("compile: %v", err)
	}
	u, err := asm.Parse("heapguard.c", asmSrc)
	if err != nil {
		fatalf("parse: %v", err)
	}
	res, err := patch.Apply(patch.Options{Strategy: patch.Cache}, u)
	if err != nil {
		fatalf("patch: %v", err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		fatalf("assemble: %v", err)
	}

	mcfg := monitor.DefaultConfig
	mcfg.Flags = true // segment caching needs the monitored flag
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(mcfg, m)
	if err != nil {
		fatalf("monitor service: %v", err)
	}

	// Intercept allocations and guard each block's hidden header word. In
	// the paper's framing, the allocator's metadata is a library data
	// structure the application must never touch.
	guarded := 0
	var watchNext []uint32
	svc.OnHit = func(h monitor.Hit) {
		fmt.Printf("  CORRUPTION: store to allocator header at %#x "+
			"(instruction %d) — caught at the guilty write\n", h.Addr, h.Instrs)
	}

	// Run instruction by instruction so we can guard headers as blocks are
	// handed out (a debugger would use a control breakpoint on alloc).
	for !m.Halted() {
		pc := m.PC()
		in, ok := m.InstrAt(pc)
		isAlloc := ok && in.Op.String() == "ta" && in.Imm == machine.TrapAlloc
		if err := m.Step(); err != nil {
			fatalf("step: %v", err)
		}
		if isAlloc {
			ptr := uint32(m.Reg(8)) // %o0 holds the new block
			watchNext = append(watchNext, ptr-4)
		}
		for _, hdr := range watchNext {
			if err := svc.CreateRegion(hdr, 4); err == nil {
				guarded++
				fmt.Printf("guarding allocator header at %#x\n", hdr)
			}
		}
		watchNext = watchNext[:0]
	}
	fmt.Printf("done: %d headers guarded, %d corruptions detected, exit=%d\n",
		guarded, len(svc.Hits), m.ExitCode())
}
