// Quickstart: the monitored region service as a plain Go library.
//
// A host program (here: a toy byte-addressed VM loop) calls CheckWrite on
// every store it performs; the service reports monitor hits through the
// notification callback. This is the paper's MRS interface: create and
// delete monitored regions, get called back on every write that lands in
// one.
package main

import (
	"fmt"
	"os"

	"databreak/internal/core"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "quickstart: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// The notification callback of §2.
	svc := core.New(core.WithCallback(func(addr, size uint32) {
		fmt.Printf("monitor hit: %d-byte write at %#x\n", size, addr)
	}))

	// Watch an 8-byte region (say, a two-word struct at 0x1000).
	region := core.Region{Addr: 0x1000, Size: 8}
	if err := svc.CreateMonitoredRegion(region); err != nil {
		fatalf("create region: %v", err)
	}
	fmt.Printf("watching %v; service disabled: %v\n", region, svc.Disabled())

	// The host executes stores and checks each one.
	for _, w := range []struct{ addr, size uint32 }{
		{0x0ffc, 4}, // miss: just below the region
		{0x1000, 4}, // hit: first word
		{0x1004, 4}, // hit: second word
		{0x1008, 4}, // miss: just past it
		{0x0ffc, 8}, // hit: double word straddling into the region
	} {
		svc.CheckWrite(w.addr, w.size)
	}

	// Loop pre-header range checks (§4.3): conservative, never misses.
	fmt.Printf("range [0x0f00,0x10ff] may intersect: %v\n", svc.CheckRange(0x0f00, 0x10ff))
	fmt.Printf("range [0x9000,0x9fff] may intersect: %v\n", svc.CheckRange(0x9000, 0x9fff))

	if err := svc.DeleteMonitoredRegion(region); err != nil {
		fatalf("delete region: %v", err)
	}
	st := svc.Stats()
	fmt.Printf("checks=%d hits=%d rangeChecks=%d rangeHits=%d disabled=%v\n",
		st.Checks, st.Hits, st.RangeChecks, st.RangeHits, svc.Disabled())
}
