package databreak

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/bench"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// TestMidRunBreakpointLifecycle drives the real debugger workflow: the
// program runs, a data breakpoint is created mid-execution, hits arrive only
// from then on, and deleting it stops them — all while the debuggee keeps
// running. Overheads aside, this is the paper's whole point: monitored
// regions can come and go at any time because the checks are always in
// place and consult only the bitmap.
func TestMidRunBreakpointLifecycle(t *testing.T) {
	src := `
int cell;
int main() {
	int round;
	for (round = 0; round < 9; round = round + 1) {
		cell = round;
	}
	return cell;
}
`
	asmSrc, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := asm.Parse("mid.c", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := patch.Apply(patch.Options{Strategy: patch.BitmapInlineRegisters}, u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := prog.LookupSym("cell", "")
	if !ok {
		t.Fatal("no symbol cell")
	}

	// Phase 1: run until cell reaches 3 with no breakpoint — no hits.
	for m.ReadWord(sym.Addr) < 3 && !m.Halted() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(svc.Hits) != 0 {
		t.Fatalf("hits before creation: %d", len(svc.Hits))
	}

	// Phase 2: create the breakpoint mid-run; the next writes must hit.
	if err := svc.CreateRegion(sym.Addr, 4); err != nil {
		t.Fatal(err)
	}
	for m.ReadWord(sym.Addr) < 6 && !m.Halted() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	mid := len(svc.Hits)
	if mid == 0 {
		t.Fatal("no hits while the region was live")
	}

	// Phase 3: delete it; the remaining writes must be silent again.
	if err := svc.DeleteRegion(sym.Addr, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(svc.Hits) != mid {
		t.Fatalf("hits after deletion grew: %d -> %d", mid, len(svc.Hits))
	}
	if m.ExitCode() != 8 {
		t.Fatalf("exit = %d, want 8", m.ExitCode())
	}
	// Every recorded hit names the watched word.
	for _, h := range svc.Hits {
		if h.Addr != sym.Addr {
			t.Fatalf("stray hit at %#x", h.Addr)
		}
	}
}

// TestManyRegionsOverheadIndependence verifies the paper's abstract claim
// directly: the overhead of checking is independent of the number of
// monitored regions (as long as they are not being written).
func TestManyRegionsOverheadIndependence(t *testing.T) {
	src := `
int work[256];
int main() {
	int i;
	int r;
	for (r = 0; r < 40; r = r + 1) {
		for (i = 0; i < 256; i = i + 1) work[i] = i + r;
	}
	return work[255];
}
`
	asmSrc, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := asm.Parse("many.c", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(nRegions int) int64 {
		res, err := patch.Apply(patch.Options{Strategy: patch.BitmapInlineRegisters}, u.Clone())
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		prog.Load(m)
		svc, err := monitor.NewService(monitor.DefaultConfig, m)
		if err != nil {
			t.Fatal(err)
		}
		// Far-away regions the program never touches.
		for i := 0; i < nRegions; i++ {
			if err := svc.CreateRegion(0x7000_0000+uint32(i)*64, 4); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(svc.Hits) != 0 {
			t.Fatal("far regions must not hit")
		}
		return m.Cycles()
	}
	one := run(1)
	many := run(200)
	// Identical cycle counts: the check cost does not depend on the number
	// of regions at all (bitmap lookups read the same words).
	if one != many {
		t.Fatalf("1 region: %d cycles; 200 regions: %d cycles — overhead must be independent", one, many)
	}
}

// TestPinnedWorkloadCounts pins exact simulated cycle/instruction counts and
// program output for representative workloads under the baseline and two
// write-check strategies. The simulator is a deterministic cost model: these
// numbers ARE the experiment results, so any interpreter change — including
// host-speed optimizations — must reproduce them bit for bit. If an
// intentional cost-model change moves them, update the constants and note it
// in EXPERIMENTS.md; an unintentional diff here is a correctness bug.
func TestPinnedWorkloadCounts(t *testing.T) {
	type pin struct {
		cycles, instrs int64
		output         string
	}
	golden := map[string]map[string]pin{
		"eqntott": {
			"base":  {2145882, 1398794, "19987\n"},
			"bir":   {4184323, 2713402, "19987\n"},
			"cache": {2980393, 2041067, "19987\n"},
		},
		"matrix300": {
			"base":  {7764135, 4207825, "317196\n"},
			"bir":   {17363271, 8616273, "317196\n"},
			"cache": {9835325, 5933398, "317196\n"},
		},
	}
	cfg := bench.DefaultConfig()
	for name, pins := range golden {
		p, ok := workload.ByName(name, 1)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		u, err := bench.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		runs := map[string]func() (bench.Run, error){
			"base": func() (bench.Run, error) { return cfg.RunBaseline(u) },
			"bir": func() (bench.Run, error) {
				return cfg.RunStrategy(u, patch.BitmapInlineRegisters, monitor.DefaultConfig, false)
			},
			"cache": func() (bench.Run, error) {
				mcfg := monitor.DefaultConfig
				mcfg.Flags = true
				return cfg.RunStrategy(u, patch.Cache, mcfg, false)
			},
		}
		for variant, want := range pins {
			got, err := runs[variant]()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, variant, err)
			}
			if got.Cycles != want.cycles || got.Instrs != want.instrs || got.Output != want.output {
				t.Errorf("%s/%s: cycles/instrs/output = %d/%d/%q, want %d/%d/%q",
					name, variant, got.Cycles, got.Instrs, got.Output,
					want.cycles, want.instrs, want.output)
			}
		}
	}
}
