package databreak

import (
	"fmt"
	"runtime"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/bench"
	"databreak/internal/elim"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// The benchmarks below regenerate the paper's evaluation. Each benchmark
// executes the patched program on the simulated machine once per iteration
// and reports, alongside the host time, the simulated overhead percentage —
// the number the paper's tables print. Keep iterations low:
//
//	go test -bench=. -benchtime=1x -benchmem .
//
// regenerates every number once.

// table1Programs is a representative subset (one per behaviour class) so a
// default `go test -bench=.` stays fast; cmd/mrsbench runs the full suite.
var table1Programs = []string{"eqntott", "gcc", "fpppp", "matrix300"}

type built struct {
	prog       *asm.Program
	mcfg       monitor.Config
	baseCycles int64
}

// buildFor patches and assembles a workload once (outside the timer).
func buildFor(b *testing.B, name string, strat patch.Strategy) built {
	b.Helper()
	p, ok := workload.ByName(name, 1)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	cfg := bench.DefaultConfig()
	u, err := benchCompile(p)
	if err != nil {
		b.Fatal(err)
	}
	base, err := cfg.RunBaseline(u)
	if err != nil {
		b.Fatal(err)
	}
	mcfg := monitor.DefaultConfig
	if strat == patch.Cache || strat == patch.CacheInline {
		mcfg.Flags = true
	}
	res, err := patch.Apply(patch.Options{Strategy: strat, Monitor: mcfg}, u.Clone())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		b.Fatal(err)
	}
	return built{prog: prog, mcfg: mcfg, baseCycles: base.Cycles}
}

func benchCompile(p workload.Program) (*asm.Unit, error) {
	cfg := bench.DefaultConfig()
	_ = cfg
	return bench.Compile(p)
}

// runOnce executes the built program with one far monitored region.
func runOnce(b *testing.B, bu built) int64 {
	b.Helper()
	m := machine.New(bench.DefaultConfig().Cache, bench.DefaultConfig().Costs)
	bu.prog.Load(m)
	svc, err := monitor.NewService(bu.mcfg, m)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.CreateRegion(bench.FarRegion, 4); err != nil {
		b.Fatal(err)
	}
	svc.Reinstall()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return m.Cycles()
}

// BenchmarkTable1 regenerates Table 1 rows: one sub-benchmark per
// (program, write-check implementation), reporting overhead-%.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Programs {
		for _, strat := range bench.Table1Strategies {
			b.Run(fmt.Sprintf("%s/%s", name, strat), func(b *testing.B) {
				bu := buildFor(b, name, strat)
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycles = runOnce(b, bu)
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
				b.ReportMetric(100*(float64(cycles)-float64(bu.baseCycles))/float64(bu.baseCycles), "overhead-%")
			})
		}
	}
}

// BenchmarkTable1Disabled regenerates the Disabled column: fully patched,
// no breakpoints active.
func BenchmarkTable1Disabled(b *testing.B) {
	for _, name := range table1Programs {
		b.Run(name, func(b *testing.B) {
			bu := buildFor(b, name, patch.Bitmap)
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := machine.New(bench.DefaultConfig().Cache, bench.DefaultConfig().Costs)
				bu.prog.Load(m)
				svc, err := monitor.NewService(bu.mcfg, m)
				if err != nil {
					b.Fatal(err)
				}
				svc.DisabledOverride = true
				svc.Reinstall()
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = m.Cycles()
			}
			b.ReportMetric(100*(float64(cycles)-float64(bu.baseCycles))/float64(bu.baseCycles), "overhead-%")
		})
	}
}

// BenchmarkTable2 regenerates Table 2 rows: write-check elimination in Sym
// and Full modes, reporting overhead-% and eliminated-%.
func BenchmarkTable2(b *testing.B) {
	for _, name := range table1Programs {
		for _, mode := range []elim.Mode{elim.SymOnly, elim.Full} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				p, _ := workload.ByName(name, 1)
				cfg := bench.DefaultConfig()
				u, err := bench.Compile(p)
				if err != nil {
					b.Fatal(err)
				}
				base, err := cfg.RunBaseline(u)
				if err != nil {
					b.Fatal(err)
				}
				var run bench.Run
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run, err = cfg.RunElim(u, mode, monitor.DefaultConfig)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(100*(float64(run.Cycles)-float64(base.Cycles))/float64(base.Cycles), "overhead-%")
				if mode == elim.Full {
					el := run.Counters[elim.CounterElimSym] +
						run.Counters[elim.CounterElimLI] +
						run.Counters[elim.CounterElimRange]
					tot := el + run.Counters[patch.CounterChecks]
					if tot > 0 {
						b.ReportMetric(100*float64(el)/float64(tot), "eliminated-%")
					}
				}
			})
		}
	}
}

// BenchmarkFigure3 regenerates the segment-cache locality curve for one
// representative program, reporting the hit rate per segment size.
func BenchmarkFigure3(b *testing.B) {
	for _, segWords := range bench.Figure3Sizes {
		b.Run(fmt.Sprintf("li/seg%dw", segWords), func(b *testing.B) {
			p, _ := workload.ByName("li", 1)
			cfg := bench.DefaultConfig()
			u, err := bench.Compile(p)
			if err != nil {
				b.Fatal(err)
			}
			mcfg := monitor.Config{SegWords: uint32(segWords), Flags: true}
			var run bench.Run
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run, err = cfg.RunStrategy(u, patch.Cache, mcfg, false)
				if err != nil {
					b.Fatal(err)
				}
			}
			var total, miss uint64
			for _, wt := range []patch.WriteType{
				patch.WriteStack, patch.WriteBSS, patch.WriteHeap, patch.WriteBSSVar,
			} {
				total += run.Counters[patch.CacheTotalCounter(wt)]
				miss += run.Counters[patch.CacheMissCounter(wt)]
			}
			if total > 0 {
				b.ReportMetric(100*(1-float64(miss)/float64(total)), "hit-rate-%")
			}
		})
	}
}

// BenchmarkStrategies regenerates the §1 comparison for one program:
// trap factor, page protection, hash table, bitmap.
func BenchmarkStrategies(b *testing.B) {
	b.Run("doduc/hash-vs-bitmap", func(b *testing.B) {
		p, _ := workload.ByName("doduc", 1)
		cfg := bench.DefaultConfig()
		u, err := bench.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		base, err := cfg.RunBaseline(u)
		if err != nil {
			b.Fatal(err)
		}
		var hash, bm bench.Run
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hash, err = cfg.RunStrategy(u, patch.HashCall, monitor.DefaultConfig, false)
			if err != nil {
				b.Fatal(err)
			}
			bm, err = cfg.RunStrategy(u, patch.BitmapInlineRegisters, monitor.DefaultConfig, false)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*(float64(hash.Cycles)-float64(base.Cycles))/float64(base.Cycles), "hash-overhead-%")
		b.ReportMetric(100*(float64(bm.Cycles)-float64(base.Cycles))/float64(base.Cycles), "bitmap-overhead-%")
	})
}

// BenchmarkTable1Matrix runs the full Table 1 matrix for a small program set
// through the worker pool, serial vs one-worker-per-CPU, so the pool's
// speedup (or, on one core, its scheduling cost) is measured where it is
// used. The rows are asserted identical across worker counts each iteration.
func BenchmarkTable1Matrix(b *testing.B) {
	var programs []workload.Program
	for _, n := range []string{"eqntott", "fpppp"} {
		p, ok := workload.ByName(n, 1)
		if !ok {
			b.Fatalf("missing workload %s", n)
		}
		programs = append(programs, p)
	}
	var serialRows []bench.T1Row
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.Workers = workers
			var rows []bench.T1Row
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = bench.Table1(cfg, programs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if workers == 1 {
				serialRows = rows
			} else if serialRows != nil && bench.FormatTable1(rows) != bench.FormatTable1(serialRows) {
				b.Fatal("parallel Table 1 differs from serial")
			}
		})
	}
}

// BenchmarkSimulator measures raw simulation speed (host ns per simulated
// instruction) so harness run times are predictable.
func BenchmarkSimulator(b *testing.B) {
	p, _ := workload.ByName("fpppp", 1)
	cfg := bench.DefaultConfig()
	u, err := bench.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u.Clone())
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cfg.Cache, cfg.Costs)
		prog.Load(m)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		instrs = m.Instrs()
	}
	b.ReportMetric(float64(instrs), "sim-instrs")
}
