package databreak

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/bench"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// TestConcurrentSessionStress is the tentpole correctness harness: at least
// eight concurrent monitor.Server sessions run the full workload suite with
// a debugger goroutine per session adding and removing a region mid-run.
// bench.Stress fails if any session's simulated cycle or instruction count
// differs from a serial run of the same program — concurrency must be
// invisible to the simulation. PatchChurn additionally has odd sessions
// patch their own text mid-run, so the copy-on-write privatization of the
// shared program image is exercised while sibling sessions execute from it.
// Run under -race this also exercises the locking contract across monitor,
// machine, the image sharing, and the hit fan-in.
func TestConcurrentSessionStress(t *testing.T) {
	cfg := bench.DefaultConfig()
	sc := bench.StressConfig{Sessions: len(workload.All(1)), Churn: 64, PatchChurn: true}
	if sc.Sessions < 8 {
		t.Fatalf("workload suite has %d programs; stress design point is >= 8 sessions", sc.Sessions)
	}
	if !testing.Short() {
		// Long mode: more sessions than workloads, so some programs run in
		// two sessions at once (shared *asm.Program, distinct machines).
		sc.Sessions = 2 * sc.Sessions
		sc.Churn = 256
	}
	rep, err := cfg.Stress(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != sc.Sessions {
		t.Fatalf("report has %d sessions, want %d", len(rep.Sessions), sc.Sessions)
	}
	if rep.Hits != 0 {
		t.Errorf("far/churn regions produced %d monitor hits, want 0", rep.Hits)
	}
	seen := make(map[string]bool)
	for _, s := range rep.Sessions {
		if s.Instrs == 0 {
			t.Errorf("session %d (%s) reported zero instructions", s.Session, s.Program)
		}
		seen[s.Program] = true
	}
	if len(seen) != len(workload.All(1)) {
		t.Errorf("stress covered %d distinct workloads, want all %d", len(seen), len(workload.All(1)))
	}
}

// TestRunForMatchesRun pins the count identity monitor.Session.Run depends
// on: executing a program in RunFor slices — of any size, including
// pathological one-instruction slices — must produce exactly the cycles,
// instructions, output, and exit code of an uninterrupted machine.Run.
func TestRunForMatchesRun(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 15; i = i + 1) acc = acc + fib(i);
	print(acc);
	return acc % 128;
}
`
	asmSrc, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := asm.Parse("runfor.c", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := patch.Apply(patch.Options{Strategy: patch.BitmapInlineRegisters}, u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code   int32
		cycles int64
		instrs int64
		out    string
	}
	newMonitored := func() (*machine.Machine, *monitor.Service) {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		prog.Load(m)
		svc, err := monitor.NewService(monitor.DefaultConfig, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateRegion(bench.FarRegion, 4); err != nil {
			t.Fatal(err)
		}
		svc.Reinstall()
		return m, svc
	}

	m, _ := newMonitored()
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := result{code, m.Cycles(), m.Instrs(), m.Output()}

	for _, slice := range []int64{1, 7, 100, 4096} {
		m, _ := newMonitored()
		var got result
		for {
			code, halted, err := m.RunFor(slice)
			if err != nil {
				t.Fatalf("slice %d: %v", slice, err)
			}
			if halted {
				got = result{code, m.Cycles(), m.Instrs(), m.Output()}
				break
			}
		}
		if got != want {
			t.Errorf("slice %d: got %+v, want %+v", slice, got, want)
		}
	}
}
