// Command mrsbench regenerates the paper's tables and figures on the
// simulated machine. See EXPERIMENTS.md for the mapping to the paper.
//
// Usage:
//
//	mrsbench -table 1          Table 1 (write check implementations)
//	mrsbench -table 2          Table 2 (write check elimination)
//	mrsbench -table fig3       Figure 3 (segment cache locality)
//	mrsbench -table strategies §1 strategy comparison
//	mrsbench -table breakeven  §3.3.3 break-even analysis
//	mrsbench -table kinds      region kinds (load/transition watchpoints)
//	mrsbench -table all        everything
//	mrsbench -stress N         N concurrent monitored sessions with mid-run
//	                           region churn, differentially checked against
//	                           serial runs (1 = one session per workload)
//	mrsbench -mrsd self        drive an in-process mrsd daemon with the load
//	                           generator (-sessions N concurrent sessions);
//	                           any other value is a running daemon's TCP
//	                           address. Emits sessions/sec, hits/sec, and
//	                           p50/p99 attach-to-first-hit latency; with
//	                           -json, writes BENCH_mrsd.json.
//
// -server routes every monitored table run through a shared monitor.Server
// (sliced execution through sessions); simulated counts are identical.
//
// The benchmark matrix runs on a worker pool (-workers, default one per
// CPU); table contents are identical for any worker count. -json also
// writes each table as BENCH_<table>.json with wall-clock timing.
//
// -cpuprofile and -memprofile write pprof profiles of the harness itself
// (inspect with go tool pprof); they profile the host-side interpreter, not
// the simulated machine, and do not perturb any simulated count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"databreak/internal/bench"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, fig3, strategies, breakeven, ablation, kinds, all")
	engine := flag.String("engine", "trace", "execution engine for every run: step, block, trace, or closure (counts are engine-independent)")
	hotThreshold := flag.Int("hot-threshold", 0, "dispatches before a block head compiles a trace (0 = machine default 64)")
	brProfMin := flag.Int("brprof-min", 0, "branch-site executions before the edge profile beats static prediction (0 = machine default 8)")
	scale := flag.Int("scale", 1, "workload scale factor")
	only := flag.String("program", "", "run a single benchmark by name")
	workers := flag.Int("workers", 0, "benchmark cells run concurrently (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "also write each table as BENCH_<table>.json")
	stress := flag.Int("stress", 0, "run the concurrency stress harness with this many sessions instead of tables (1 = one per workload)")
	churn := flag.Int("churn", 0, "stress: mid-run region add/remove rounds per session (0 = default)")
	patchChurn := flag.Bool("patch-churn", true, "stress: odd sessions also patch live text mid-run (copy-on-write exercise)")
	useServer := flag.Bool("server", false, "route monitored table runs through a shared monitor.Server (sliced execution; counts identical)")
	artifactCache := flag.Bool("artifact-cache", true, "memoize compiled+patched+assembled programs across tables and repeats (results are byte-identical either way)")
	artifactCacheCap := flag.Int64("artifact-cache-cap", 0, "artifact cache size bound in bytes, enforced by LRU eviction (0 = unbounded)")
	mrsd := flag.String("mrsd", "", "drive an mrsd daemon with the load generator: a TCP address, or 'self' for in-process")
	sessions := flag.Int("sessions", 0, "mrsd: concurrent sessions in the scale phase (0 = one per workload)")
	hitSessions := flag.Int("hit-sessions", 0, "mrsd: sessions in the hit/latency phase (0 = two per workload, -1 = skip)")
	batch := flag.Int("batch", 0, "mrsd: hit-coalescing batch size for the main pass (0 = daemon default)")
	traceStats := flag.Bool("trace-stats", false, "report fusion coverage (dynamic pair/triple frequencies, fused retirement share, items per retired instruction) instead of tables")
	verbose := flag.Bool("v", false, "progress output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the harness to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the harness to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Deferred so the profile is written even when a table fails
		// partway; runs before StopCPUProfile's deferral is irrelevant
		// since the two profiles are independent.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	eng, err := machine.ParseEngine(*engine)
	if err != nil {
		return err
	}
	cfg.Engine = eng
	cfg.HotThreshold = *hotThreshold
	cfg.BrProfMin = *brProfMin
	cfg.Scale = *scale
	cfg.Workers = *workers
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	if *useServer {
		srv := monitor.NewServer()
		defer srv.Close()
		cfg.Server = srv
	}
	if *artifactCache {
		cfg.Artifacts = bench.NewArtifactCache()
		cfg.Artifacts.SetCapBytes(*artifactCacheCap)
	}
	// cacheStats prints the final artifact-cache tally and, with -json,
	// writes it as BENCH_cachestats.json for CI to archive — the one
	// canonical copy of these stats (per-table reports don't repeat them).
	cacheStats := func() error {
		if cfg.Artifacts == nil {
			return nil
		}
		st := cfg.Artifacts.Stats()
		fmt.Fprintf(os.Stderr, "artifact cache: %d entries (%d hits, %d misses), %d runs (%d hits, %d misses), %d bytes retained\n",
			st.Entries, st.Hits, st.Misses, st.Runs, st.RunHits, st.RunMisses, st.Bytes)
		if !*jsonOut {
			return nil
		}
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile("BENCH_cachestats.json", append(data, '\n'), 0o644)
	}
	programs := workload.All(*scale)
	if *only != "" {
		p, ok := workload.ByName(*only, *scale)
		if !ok {
			return fmt.Errorf("unknown program %q", *only)
		}
		programs = []workload.Program{p}
	}

	if *mrsd != "" {
		addr := *mrsd
		if addr == "self" {
			addr = ""
		}
		start := time.Now()
		rep, err := cfg.MrsdLoad(bench.MrsdOptions{
			Addr:           addr,
			Sessions:       *sessions,
			Batch:          *batch,
			Churn:          *churn,
			PatchChurn:     *patchChurn,
			HitSessions:    *hitSessions,
			PerHitBaseline: true,
		})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		where := addr
		if where == "" {
			where = "in-process pipe"
		}
		fmt.Printf("mrsd load (%s, %d shards, %d conns): all sessions byte-identical to serial\n",
			where, rep.Shards, rep.Conns)
		fmt.Printf("  scale: %d sessions (%d churn, %d patch) in %.0f ms = %.1f sessions/sec\n",
			rep.Sessions, rep.ChurnSessions, rep.PatchSessions, rep.ScaleWallMS, rep.SessionsPerSec)
		if rep.HitSessions > 0 {
			fmt.Printf("  hits:  %d sessions, %d hits in %.0f ms = %.0f hits/sec (batched)\n",
				rep.HitSessions, rep.Hits, rep.HitWallMS, rep.HitsPerSec)
			fmt.Printf("  attach-to-first-hit latency: p50 %.2f ms, p99 %.2f ms\n",
				rep.AttachP50MS, rep.AttachP99MS)
			if rep.BatchSpeedup > 0 {
				fmt.Printf("  per-hit baseline: %.0f hits/sec → batching speedup %.2fx\n",
					rep.PerHitHitsPerSec, rep.BatchSpeedup)
			}
		}
		if *jsonOut {
			if err := bench.NewReport("mrsd", cfg, wall, rep).WriteFile("BENCH_mrsd.json"); err != nil {
				return err
			}
		}
		return cacheStats()
	}

	if *stress > 0 {
		start := time.Now()
		rep, err := cfg.Stress(bench.StressConfig{Sessions: *stress, Churn: *churn, PatchChurn: *patchChurn})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Printf("stress: %d concurrent sessions, %d fan-in hits, all counts bit-identical to serial (%.0f ms)\n",
			len(rep.Sessions), rep.Hits, float64(wall.Microseconds())/1000)
		for _, s := range rep.Sessions {
			tag := ""
			if s.Patched {
				tag = "  (patched live text; cycles not compared)"
			}
			fmt.Printf("  session %2d  %-10s  cycles=%d instrs=%d%s\n", s.Session, s.Program, s.Cycles, s.Instrs, tag)
		}
		if *jsonOut {
			if err := bench.NewReport("stress", cfg, wall, rep.Sessions).WriteFile("BENCH_stress.json"); err != nil {
				return err
			}
		}
		return cacheStats()
	}

	if *traceStats {
		start := time.Now()
		rows, err := bench.TraceStats(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Fusion coverage: dispatch items per retired instruction under the shared trace builder")
		fmt.Print(bench.FormatTraceStats(rows))
		if *jsonOut {
			if err := bench.NewReport("tracestats", cfg, wall, rows).WriteFile("BENCH_tracestats.json"); err != nil {
				return err
			}
		}
		return cacheStats()
	}

	// report writes BENCH_<name>.json when -json is set; text output to
	// stdout is identical with and without it.
	report := func(name string, wall time.Duration, rows any) error {
		if !*jsonOut {
			return nil
		}
		path := "BENCH_" + name + ".json"
		if err := bench.NewReport(name, cfg, wall, rows).WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%.0f ms, %d workers)\n",
			path, float64(wall.Microseconds())/1000, cfg.Workers)
		return nil
	}

	runT1 := func() error {
		start := time.Now()
		rows, err := bench.Table1(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Table 1: monitored region service overhead by write check implementation")
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
		return report("table1", wall, bench.Table1JSON(rows))
	}
	runT2 := func() error {
		start := time.Now()
		rows, err := bench.Table2(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Table 2: write check elimination")
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
		return report("table2", wall, bench.Table2JSON(rows))
	}
	runF3 := func() error {
		start := time.Now()
		series, err := bench.Figure3(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Figure 3: segment cache locality vs segment size (hit rate)")
		fmt.Print(bench.FormatFigure3(series, programs))
		fmt.Println()
		return report("fig3", wall, bench.Figure3JSON(series, programs))
	}
	runStrat := func() error {
		start := time.Now()
		rows, err := bench.StrategyTable(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Strategy comparison (paper §1)")
		fmt.Print(bench.FormatStrategyTable(rows))
		fmt.Println()
		return report("strategies", wall, rows)
	}
	runBE := func() error {
		start := time.Now()
		fmt.Println("Break-even analysis (paper §3.3.3)")
		fmt.Print(bench.FormatBreakEven())
		fmt.Println()
		return report("breakeven", time.Since(start), bench.BreakEvenRows())
	}
	runAbl := func() error {
		start := time.Now()
		rows, err := bench.Ablation(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Ablations: read monitoring (§5) and the segment-flag bit")
		fmt.Print(bench.FormatAblation(rows))
		fmt.Println()
		return report("ablation", wall, rows)
	}
	runKinds := func() error {
		start := time.Now()
		rows, err := bench.Kinds(cfg, programs)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println("Region kinds: load and transition watchpoint overhead vs store-only")
		fmt.Print(bench.FormatKinds(rows))
		fmt.Println()
		return report("kinds", wall, rows)
	}

	runTables := func() error {
		switch *table {
		case "1":
			return runT1()
		case "2":
			return runT2()
		case "fig3":
			return runF3()
		case "strategies":
			return runStrat()
		case "breakeven":
			return runBE()
		case "ablation":
			return runAbl()
		case "kinds":
			return runKinds()
		case "all":
			for _, f := range []func() error{runT1, runT2, runF3, runStrat, runBE, runAbl, runKinds} {
				if err := f(); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown table %q", *table)
		}
	}
	if err := runTables(); err != nil {
		return err
	}
	// BENCH_hostperf.json tracks host throughput per engine (the same unit
	// of work as BenchmarkRunWorkload), not just table wall time; HostPerf
	// also cross-checks that every engine produces identical counts.
	if *jsonOut {
		start := time.Now()
		rows, err := bench.HostPerf(cfg, 9)
		if err != nil {
			return err
		}
		if err := report("hostperf", time.Since(start), rows); err != nil {
			return err
		}
	}
	return cacheStats()
}
