// Command mrsbench regenerates the paper's tables and figures on the
// simulated machine. See EXPERIMENTS.md for the mapping to the paper.
//
// Usage:
//
//	mrsbench -table 1          Table 1 (write check implementations)
//	mrsbench -table 2          Table 2 (write check elimination)
//	mrsbench -table fig3       Figure 3 (segment cache locality)
//	mrsbench -table strategies §1 strategy comparison
//	mrsbench -table breakeven  §3.3.3 break-even analysis
//	mrsbench -table all        everything
//
// The benchmark matrix runs on a worker pool (-workers, default one per
// CPU); table contents are identical for any worker count. -json also
// writes each table as BENCH_<table>.json with wall-clock timing.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"databreak/internal/bench"
	"databreak/internal/workload"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, fig3, strategies, breakeven, ablation, all")
	scale := flag.Int("scale", 1, "workload scale factor")
	only := flag.String("program", "", "run a single benchmark by name")
	workers := flag.Int("workers", 0, "benchmark cells run concurrently (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "also write each table as BENCH_<table>.json")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *workers
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	programs := workload.All(*scale)
	if *only != "" {
		p, ok := workload.ByName(*only, *scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown program %q\n", *only)
			os.Exit(1)
		}
		programs = []workload.Program{p}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// report writes BENCH_<name>.json when -json is set; text output to
	// stdout is identical with and without it.
	report := func(name string, wall time.Duration, rows any) {
		if !*jsonOut {
			return
		}
		path := "BENCH_" + name + ".json"
		if err := bench.NewReport(name, cfg, wall, rows).WriteFile(path); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%.0f ms, %d workers)\n",
			path, float64(wall.Microseconds())/1000, cfg.Workers)
	}

	runT1 := func() {
		start := time.Now()
		rows, err := bench.Table1(cfg, programs)
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		fmt.Println("Table 1: monitored region service overhead by write check implementation")
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
		report("table1", wall, bench.Table1JSON(rows))
	}
	runT2 := func() {
		start := time.Now()
		rows, err := bench.Table2(cfg, programs)
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		fmt.Println("Table 2: write check elimination")
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
		report("table2", wall, bench.Table2JSON(rows))
	}
	runF3 := func() {
		start := time.Now()
		series, err := bench.Figure3(cfg, programs)
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		fmt.Println("Figure 3: segment cache locality vs segment size (hit rate)")
		fmt.Print(bench.FormatFigure3(series, programs))
		fmt.Println()
		report("fig3", wall, bench.Figure3JSON(series, programs))
	}
	runStrat := func() {
		start := time.Now()
		rows, err := bench.StrategyTable(cfg, programs)
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		fmt.Println("Strategy comparison (paper §1)")
		fmt.Print(bench.FormatStrategyTable(rows))
		fmt.Println()
		report("strategies", wall, rows)
	}
	runBE := func() {
		start := time.Now()
		fmt.Println("Break-even analysis (paper §3.3.3)")
		fmt.Print(bench.FormatBreakEven())
		fmt.Println()
		report("breakeven", time.Since(start), bench.BreakEvenRows())
	}
	runAbl := func() {
		start := time.Now()
		rows, err := bench.Ablation(cfg, programs)
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		fmt.Println("Ablations: read monitoring (§5) and the segment-flag bit")
		fmt.Print(bench.FormatAblation(rows))
		fmt.Println()
		report("ablation", wall, rows)
	}

	switch *table {
	case "1":
		runT1()
	case "2":
		runT2()
	case "fig3":
		runF3()
	case "strategies":
		runStrat()
	case "breakeven":
		runBE()
	case "ablation":
		runAbl()
	case "all":
		runT1()
		runT2()
		runF3()
		runStrat()
		runBE()
		runAbl()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(1)
	}
}
