// Command mrsd serves the monitored region service as a network daemon:
// sessions are placed onto per-core shards of monitor.Server by consistent
// hash of the session id, watchpoint hits stream back as batched frames, and
// programs are built once per workload through a bounded artifact cache and
// shared copy-on-write across every session that attaches them.
//
// Usage:
//
//	mrsd                              serve on 127.0.0.1:7707
//	mrsd -addr :9000 -shards 8        explicit bind and shard count
//	mrsd -batch 1                     one frame per hit (benchmark baseline)
//
// Drive it with the load generator: mrsbench -mrsd <addr> -sessions N.
// SIGINT/SIGTERM shut down gracefully: listeners stop, sessions detach, and
// each shard drains its hit queue before exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"databreak/internal/bench"
	"databreak/internal/machine"
	"databreak/internal/mrsnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7707", "TCP listen address")
	shards := flag.Int("shards", 0, "per-core monitor.Server shards (0 = one per CPU)")
	queue := flag.Int("queue", 0, "per-shard hit admission queue bound (0 = default 4096)")
	maxSessions := flag.Int("max-sessions", 0, "session cap per shard (0 = unlimited)")
	batch := flag.Int("batch", 0, "default hit-coalescing batch size (0 = 64; 1 = one frame per hit)")
	flush := flag.Duration("flush", 0, "hit batch flush deadline (0 = 500µs)")
	reconcile := flag.Duration("reconcile-timeout", 0, "bound on draining a run's hits to the client before the run response (0 = 5s)")
	engine := flag.String("engine", "trace", "execution engine: step, block, trace, or closure (counts are engine-independent)")
	hotThreshold := flag.Int("hot-threshold", 0, "dispatches before a block head compiles a trace (0 = machine default 64)")
	brProfMin := flag.Int("brprof-min", 0, "branch-site executions before the edge profile beats static prediction (0 = machine default 8)")
	cacheCap := flag.Int64("artifact-cache-cap", 128<<20, "artifact cache size bound in bytes (0 = unbounded)")
	verbose := flag.Bool("v", false, "log session lifecycle events")
	flag.Parse()

	cfg := bench.DefaultConfig()
	eng, err := machine.ParseEngine(*engine)
	if err != nil {
		return err
	}
	cfg.Engine = eng
	cfg.HotThreshold = *hotThreshold
	cfg.BrProfMin = *brProfMin
	cfg.Artifacts = bench.NewArtifactCache()
	cfg.Artifacts.SetCapBytes(*cacheCap)

	opts := mrsnet.Options{
		Shards:              *shards,
		QueueCap:            *queue,
		MaxSessionsPerShard: *maxSessions,
		Batch:               *batch,
		Flush:               *flush,
		ReconcileTimeout:    *reconcile,
		Programs:            cfg.ProgramSource(),
		NewMachine:          cfg.MachineFactory(),
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	d, err := mrsnet.NewDaemon(opts)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "mrsd: %v: shutting down (%d sessions served)\n", s, d.Attached())
		start := time.Now()
		d.Close()
		st := cfg.Artifacts.Stats()
		fmt.Fprintf(os.Stderr, "mrsd: drained in %v; artifact cache: %d entries, %d bytes, %d evictions\n",
			time.Since(start), st.Entries, st.Bytes, st.Evictions)
		os.Exit(0)
	}()

	fmt.Fprintf(os.Stderr, "mrsd: serving on %s (%d shards, engine %s)\n", *addr, d.Shards(), eng)
	return d.ListenAndServe(*addr)
}
