// Command mrsrun is a minimal data-breakpoint debugger: it compiles a
// mini-C program (or assembles a .s file), installs data breakpoints on
// named global variables, runs the program under the monitored region
// service, and reports every monitor hit — the paper's motivating query
// "stop when field f of structure s is modified", end to end.
//
// Usage:
//
//	mrsrun -watch counter prog.c
//	mrsrun -watch grid -strategy cache -v prog.c
//	mrsrun -watch total -elim prog.c      (eliminated checks + PreMonitor)
//	mrsrun -watch buf -watch-kind load prog.c       (read watchpoint, §5)
//	mrsrun -watch flag -watch-kind transition -pred nonzero prog.c
//
// -watch-kind selects which accesses deliver hits: all (default), store,
// load (instruments loads too), or transition (store-triggered, delivered
// only when -pred's result over the stored word changes; -pred is one of
// changed, nonzero, sign, mask, eq, with -pred-arg for mask/eq).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/elim"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
)

func main() {
	watch := flag.String("watch", "", "comma-separated global variables to watch")
	strategy := flag.String("strategy", "bitmap-inline-registers",
		"write check implementation: bitmap, bitmap-inline, bitmap-inline-registers, cache, cache-inline, hash")
	useElim := flag.Bool("elim", false, "use write-check elimination (PreMonitor arms known writes)")
	watchKind := flag.String("watch-kind", "all", "access kinds that deliver hits: all, store, load, transition")
	pred := flag.String("pred", "changed", "transition predicate: changed, nonzero, sign, mask, eq")
	predArg := flag.Uint("pred-arg", 0, "argument for the mask and eq predicates")
	verbose := flag.Bool("v", false, "print cycle statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrsrun [-watch v1,v2] [-strategy S | -elim] <prog.c|prog.s>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	src := string(data)
	if strings.HasSuffix(path, ".c") {
		src, err = minic.Compile(src)
		if err != nil {
			fail(err)
		}
	}
	u, err := asm.Parse(path, src)
	if err != nil {
		fail(err)
	}

	strategies := map[string]patch.Strategy{
		"bitmap": patch.Bitmap, "bitmap-inline": patch.BitmapInline,
		"bitmap-inline-registers": patch.BitmapInlineRegisters,
		"cache":                   patch.Cache, "cache-inline": patch.CacheInline,
		"hash": patch.HashCall,
	}

	// Resolve the watch kind up front: "load" changes how the program is
	// patched (loads get checks too), not just how regions are created.
	kindName := strings.ToLower(*watchKind)
	var kind monitor.Kind
	transition := kindName == "transition"
	var transPred monitor.Predicate
	if transition {
		pk, err := monitor.ParsePredKind(*pred)
		if err != nil {
			fail(err)
		}
		transPred = monitor.Predicate{Kind: pk, Arg: uint32(*predArg)}
	} else {
		kind, err = monitor.ParseKind(kindName)
		if err != nil {
			fail(err)
		}
	}
	checkReads := kindName == "load"
	if *useElim && kindName != "all" {
		fail(fmt.Errorf("-watch-kind %s is not supported with -elim (PreMonitor arms write checks)", kindName))
	}

	mcfg := monitor.DefaultConfig
	var prog *asm.Program
	var elimRes *elim.Result
	if *useElim {
		res, err := elim.Apply(elim.Options{Mode: elim.Full, Monitor: mcfg, CheckReads: checkReads}, u)
		if err != nil {
			fail(err)
		}
		elimRes = res
		prog, err = asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			fail(err)
		}
	} else {
		strat, ok := strategies[strings.ToLower(*strategy)]
		if !ok {
			fail(fmt.Errorf("unknown strategy %q", *strategy))
		}
		if strat == patch.Cache || strat == patch.CacheInline {
			mcfg.Flags = true
		}
		res, err := patch.Apply(patch.Options{Strategy: strat, Monitor: mcfg, CheckReads: checkReads}, u)
		if err != nil {
			fail(err)
		}
		prog, err = asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			fail(err)
		}
	}

	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(mcfg, m)
	if err != nil {
		fail(err)
	}
	var rt *elim.Runtime
	if elimRes != nil {
		rt = elim.NewRuntime(m, prog, elimRes)
	}

	// Resolve watched symbols to monitored regions.
	symOf := make(map[uint32]string)
	if *watch != "" {
		for _, name := range strings.Split(*watch, ",") {
			name = strings.TrimSpace(name)
			sym, ok := prog.LookupSym(name, "")
			if !ok || sym.Kind != asm.SymGlobal {
				fail(fmt.Errorf("no global variable %q (stack variables need a live frame)", name))
			}
			size := uint32(sym.Size)
			if size == 0 {
				size = 4
			}
			switch {
			case rt != nil:
				if err := rt.PreMonitorSymbol(svc, name); err != nil {
					fail(err)
				}
			case transition:
				if err := svc.CreateTransitionRegion(sym.Addr, size, transPred); err != nil {
					fail(err)
				}
			default:
				if err := svc.CreateRegionKind(sym.Addr, size, kind); err != nil {
					fail(err)
				}
			}
			for o := uint32(0); o < size; o += 4 {
				symOf[sym.Addr+o] = name
			}
			fmt.Fprintf(os.Stderr, "mrsrun: watching %s at %#x (+%d bytes)\n", name, sym.Addr, size)
		}
	}

	svc.OnHit = func(h monitor.Hit) {
		name := symOf[h.Addr&^3]
		if name == "" {
			name = "?"
		}
		switch {
		case transition:
			fmt.Fprintf(os.Stderr, "mrsrun: TRANSITION %s at %#x (%d -> %d) after %d instructions\n",
				name, h.Addr, int32(h.Old), int32(h.New), h.Instrs)
		case h.Read:
			fmt.Fprintf(os.Stderr, "mrsrun: READ %s at %#x (value %d) after %d instructions\n",
				name, h.Addr, m.ReadWord(h.Addr&^3), h.Instrs)
		default:
			fmt.Fprintf(os.Stderr, "mrsrun: HIT %s at %#x (new value %d) after %d instructions\n",
				name, h.Addr, m.ReadWord(h.Addr&^3), h.Instrs)
		}
	}

	code, err := m.Run()
	if err != nil {
		fail(err)
	}
	fmt.Print(m.Output())
	if *verbose {
		fmt.Fprintf(os.Stderr, "mrsrun: exit=%d instrs=%d cycles=%d hits=%d\n",
			code, m.Instrs(), m.Cycles(), len(svc.Hits))
	}
	os.Exit(int(code))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mrsrun:", err)
	os.Exit(1)
}
