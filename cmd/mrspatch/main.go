// Command mrspatch is the standalone analysis/patching tool: it reads an
// assembly file (or compiles a mini-C file first), inserts write checks with
// the selected strategy or runs the elimination analysis, and writes the
// patched assembly — the "extra processing stage between the compiler and
// the assembler" of §2.1.
//
// Usage:
//
//	mrspatch -strategy bitmap-inline-registers prog.s > patched.s
//	mrspatch -c -strategy cache prog.c > patched.s
//	mrspatch -elim full prog.s > patched.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/elim"
	"databreak/internal/minic"
	"databreak/internal/patch"
)

var strategies = map[string]patch.Strategy{
	"none":                    patch.None,
	"bitmap":                  patch.Bitmap,
	"bitmap-inline":           patch.BitmapInline,
	"bitmap-inline-registers": patch.BitmapInlineRegisters,
	"cache":                   patch.Cache,
	"cache-inline":            patch.CacheInline,
	"hash":                    patch.HashCall,
}

func main() {
	strategy := flag.String("strategy", "bitmap-inline-registers",
		"write check implementation: none, bitmap, bitmap-inline, bitmap-inline-registers, cache, cache-inline, hash")
	elimMode := flag.String("elim", "", "run check elimination instead: sym or full")
	compileC := flag.Bool("c", false, "input is mini-C source; compile it first")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrspatch [-c] [-strategy S | -elim sym|full] <file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	src := string(data)
	if *compileC {
		src, err = minic.Compile(src)
		if err != nil {
			fail(err)
		}
	}
	u, err := asm.Parse(flag.Arg(0), src)
	if err != nil {
		fail(err)
	}

	var units []*asm.Unit
	switch {
	case *elimMode != "":
		mode := elim.SymOnly
		if strings.EqualFold(*elimMode, "full") {
			mode = elim.Full
		} else if !strings.EqualFold(*elimMode, "sym") {
			fail(fmt.Errorf("unknown elimination mode %q", *elimMode))
		}
		res, err := elim.Apply(elim.Options{Mode: mode}, u)
		if err != nil {
			fail(err)
		}
		units = res.Units
		fmt.Fprintf(os.Stderr, "mrspatch: %d symbol, %d loop-invariant, %d range sites eliminated; %d checks kept\n",
			res.StaticSym, res.StaticLI, res.StaticRange, res.StaticChecked)
	default:
		strat, ok := strategies[strings.ToLower(*strategy)]
		if !ok {
			fail(fmt.Errorf("unknown strategy %q", *strategy))
		}
		res, err := patch.Apply(patch.Options{Strategy: strat}, u)
		if err != nil {
			fail(err)
		}
		units = res.Units
		fmt.Fprintf(os.Stderr, "mrspatch: %d write instructions patched\n", res.StaticWrites)
	}

	for _, out := range units {
		fmt.Printf("! ---- unit %s ----\n", out.Name)
		fmt.Print(asm.Format(out))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mrspatch:", err)
	os.Exit(1)
}
